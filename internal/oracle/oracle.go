package oracle

import (
	"fmt"

	"talus/internal/curve"
	"talus/internal/hash"
	"talus/internal/monitor"
	"talus/internal/workload"
)

// Scenario is one validation workload: a named pattern plus the stream
// length its oracle and monitor runs use.
type Scenario struct {
	Name     string
	Pattern  workload.Pattern
	Accesses int64
}

// Scenarios returns the validation suite for an LLC of llcLines: one
// scenario per generator family, footprints placed around the LLC so
// every curve has structure — a cliff, a ramp, or a convex knee —
// inside the monitor's [LLC/4, 4·LLC] coverage window. accesses sets
// each scenario's stream length (scaled so laps and phases fit).
func Scenarios(llcLines, accesses int64) []Scenario {
	l := llcLines
	pc := workload.NewPointerChase(l/2, 0xC11FF)
	diurnal, err := workload.NewDiurnal(l, 0.9, accesses/16, l/8)
	if err != nil {
		panic(err)
	}
	seeker, err := workload.NewCliffSeeker(l)
	if err != nil {
		panic(err)
	}
	return []Scenario{
		{"scan", &workload.Scan{Lines: 3 * l / 2}, accesses},
		{"rand", &workload.Rand{Lines: 2 * l}, accesses},
		{"zipf", workload.NewZipf(4*l, 0.9), accesses},
		{"strided", &workload.Strided{Lines: 4 * l, Stride: 4}, accesses},
		{"pointerchase", pc, accesses},
		{"diurnal", diurnal, accesses},
		{"cliffseeker", seeker, accesses},
		{"scanmix", workload.MustMix(
			workload.Component{Pattern: &workload.Rand{Lines: l / 4}, Weight: 0.4},
			workload.Component{Pattern: &workload.Scan{Lines: l}, Weight: 0.6},
		), accesses},
	}
}

// Comparison is one scenario's monitor-vs-oracle accuracy result.
type Comparison struct {
	Name     string
	Accesses int64
	LLC      int64
	// Rates are the monitor bank's sampling rates (sub, fine, coarse).
	Rates [3]float64
	// Distance is curve.Distance between the monitor's curve and the
	// oracle's, both in misses per kilo-access: a normalized L1 gap in
	// [0, 1] that integrates over the monitor's way-granularity smear at
	// cliffs instead of failing pointwise on it.
	Distance float64
	// MaxRatioErr is the worst absolute miss-ratio gap on the monitor's
	// own size grid, outside cliff bands: the monitor's documented
	// cliff-position jitter is ±25% of the cliff size (set-level Poisson
	// noise; see the monitor round-trip tests), so pointwise comparison
	// inside ±25% of an oracle cliff measures that jitter, not curve
	// accuracy — Distance integrates over it instead. The size-0 point
	// (extrapolated all-miss level) is also excluded: under Theorem-4
	// address sampling of a heavy-tailed pattern, its variance is set by
	// the few hottest addresses landing in or out of the sample.
	MaxRatioErr float64
}

// CompareMonitor feeds one identical access stream to a live LRUMonitor
// and an exact StackSim and reports how far the measured curve is from
// ground truth, along with both curves (monitor, oracle) in misses per
// kilo-access on the monitor's size grid.
func CompareMonitor(sc Scenario, llcLines int64, seed uint64) (Comparison, *curve.Curve, *curve.Curve, error) {
	cmp := Comparison{Name: sc.Name, Accesses: sc.Accesses, LLC: llcLines, Rates: monitor.Rates(llcLines)}
	mon, err := monitor.NewLRUMonitor(llcLines, seed)
	if err != nil {
		return cmp, nil, nil, err
	}
	sim := NewStackSim()
	p := sc.Pattern.Clone()
	rng := hash.NewSplitMix64(seed)
	for i := int64(0); i < sc.Accesses; i++ {
		a := p.Next(rng)
		mon.Observe(a)
		sim.Access(a)
	}
	kilo := float64(sc.Accesses) / 1000
	monCurve, err := mon.Curve(kilo)
	if err != nil {
		return cmp, nil, nil, fmt.Errorf("oracle: %s monitor curve: %w", sc.Name, err)
	}
	// Evaluate the oracle on the monitor's own grid: Distance integrates
	// over the union grid anyway, and a shared grid keeps MaxRatioErr a
	// pure value comparison.
	var sizes []int64
	for _, pt := range monCurve.Points() {
		if s := int64(pt.Size); s > 0 {
			sizes = append(sizes, s)
		}
	}
	oraCurve, err := sim.Curve(sizes, kilo)
	if err != nil {
		return cmp, nil, nil, fmt.Errorf("oracle: %s oracle curve: %w", sc.Name, err)
	}
	cmp.Distance = curve.Distance(monCurve, oraCurve)
	cmp.MaxRatioErr = maxRatioErr(monCurve, oraCurve)
	return cmp, monCurve, oraCurve, nil
}

// maxRatioErr is the worst |monitor − oracle| miss-ratio gap over the
// monitor grid, excluding the size-0 extrapolation point and ±25%
// bands around oracle cliffs (see Comparison.MaxRatioErr for why both
// exclusions are principled, not slack).
func maxRatioErr(mon, ora *curve.Curve) float64 {
	pts := ora.Points()
	// Cliff positions: grid steps where the exact curve drops by more
	// than 100 misses per kilo-access.
	var cliffs []float64
	for i := 1; i < len(pts); i++ {
		if pts[i-1].MPKI-pts[i].MPKI > 100 {
			cliffs = append(cliffs, pts[i].Size)
		}
	}
	worst := 0.0
	for i, p := range pts {
		if p.Size <= 0 {
			continue
		}
		// The local grid step is one way of the monitor array modeling
		// this size region: the band is position jitter (±25%) plus one
		// way of quantization.
		step := 0.0
		if i > 0 {
			step = p.Size - pts[i-1].Size
		}
		if i < len(pts)-1 && pts[i+1].Size-p.Size > step {
			step = pts[i+1].Size - p.Size
		}
		inBand := false
		for _, c := range cliffs {
			if p.Size >= 0.75*c-step && p.Size <= 1.25*c+step {
				inBand = true
				break
			}
		}
		if inBand {
			continue
		}
		if d := abs(mon.Eval(p.Size)-p.MPKI) / 1000; d > worst {
			worst = d
		}
	}
	return worst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ErrorTable runs CompareMonitor for every scenario — the data behind
// EXPERIMENTS.md's monitor-vs-oracle table and the CI artifact.
func ErrorTable(llcLines, accesses int64, seed uint64) ([]Comparison, error) {
	var out []Comparison
	for _, sc := range Scenarios(llcLines, accesses) {
		cmp, _, _, err := CompareMonitor(sc, llcLines, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, cmp)
	}
	return out, nil
}

// Grid returns an evenly spaced size grid of n points covering
// (0, maxLines], the standard grid oracle tests and tools sample exact
// curves on.
func Grid(maxLines int64, n int) []int64 {
	if n < 1 {
		n = 1
	}
	out := make([]int64, 0, n)
	prev := int64(0)
	for i := 1; i <= n; i++ {
		s := maxLines * int64(i) / int64(n)
		if s > prev {
			out = append(out, s)
			prev = s
		}
	}
	return out
}
