package oracle

import (
	"fmt"
	"sort"

	"talus/internal/curve"
	"talus/internal/hash"
	"talus/internal/workload"
)

// StackSim is an exact Mattson stack-distance LRU simulator: one pass
// over an access stream yields the true LRU miss count at every cache
// size at once. For each access it computes the reuse distance — the
// number of distinct other lines touched since that line's previous
// access — and by the LRU stack property the access hits in a cache of
// S lines iff its distance is < S.
//
// Distances come from an order-statistic structure, a Fenwick tree over
// access-time slots: each line's most recent access occupies one live
// slot, so the distance of a reuse at previous time t0 is the number of
// live slots after t0 (live total − prefix(t0)), an O(log N) query.
// Slots are append-only with periodic compaction, so memory stays
// O(distinct lines), not O(stream length). Total cost is O(N·log M)
// for N accesses over M distinct lines.
type StackSim struct {
	last map[uint64]int32 // line → its live slot (1-based)
	bit  []int64          // Fenwick tree over slots; bit[0] unused
	t    int32            // highest slot in use
	hist []int64          // hist[d] = reuses at distance d
	cold int64            // first-touch accesses (miss at every size)
	n    int64            // total accesses
}

// NewStackSim returns an empty simulator.
func NewStackSim() *StackSim {
	return &StackSim{last: make(map[uint64]int32), bit: make([]int64, 1)}
}

// Access feeds one line address.
func (s *StackSim) Access(addr uint64) {
	// Compact first, while every last entry still names a live slot;
	// mid-access the reused line's old slot is dead but still mapped.
	if int(s.t) >= 4*len(s.last)+4096 {
		s.compact()
	}
	s.n++
	if t0, ok := s.last[addr]; ok {
		d := int64(len(s.last)) - s.prefix(t0)
		if d >= int64(len(s.hist)) {
			s.hist = append(s.hist, make([]int64, d+1-int64(len(s.hist)))...)
		}
		s.hist[d]++
		s.add(t0, -1)
	} else {
		s.cold++
	}
	s.appendSlot()
	s.last[addr] = s.t
}

// prefix returns the number of live slots with index ≤ i.
func (s *StackSim) prefix(i int32) int64 {
	var sum int64
	for ; i > 0; i -= i & -i {
		sum += s.bit[i]
	}
	return sum
}

// add applies delta at slot i (i ≤ s.t).
func (s *StackSim) add(i int32, delta int64) {
	for ; int(i) <= int(s.t); i += i & -i {
		s.bit[i] += delta
	}
}

// appendSlot extends the tree by one live slot at index t+1. A Fenwick
// node i covers the range (i−lowbit(i), i], so the new node's value is
// 1 (the new slot) plus the prefix sum over the rest of its range —
// computable from the existing tree, which is what makes append-only
// growth sound where naive zero-extension would not be.
func (s *StackSim) appendSlot() {
	i := s.t + 1
	low := i & -i
	val := int64(1) + s.prefix(i-1) - s.prefix(i-low)
	if int(i) >= len(s.bit) {
		s.bit = append(s.bit, 0)
	}
	s.bit[i] = val
	s.t = i
}

// compact renumbers the live slots to 1..M in time order and rebuilds
// the tree, reclaiming the dead slots left behind by reuses.
func (s *StackSim) compact() {
	type ent struct {
		slot int32
		addr uint64
	}
	live := make([]ent, 0, len(s.last))
	for a, t := range s.last {
		live = append(live, ent{t, a})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].slot < live[j].slot })
	s.bit = s.bit[:1]
	for i := range s.bit {
		s.bit[i] = 0
	}
	s.t = 0
	for _, e := range live {
		s.appendSlot()
		s.last[e.addr] = s.t
	}
}

// Accesses returns the number of accesses fed so far.
func (s *StackSim) Accesses() int64 { return s.n }

// Distinct returns the number of distinct lines seen (= cold misses).
func (s *StackSim) Distinct() int64 { return s.cold }

// MaxDistance returns the largest observed reuse distance plus one: the
// smallest cache size at which every reuse hits.
func (s *StackSim) MaxDistance() int64 { return int64(len(s.hist)) }

// Misses returns the exact number of LRU misses a cache of size lines
// would have incurred over the fed stream (cold misses included).
func (s *StackSim) Misses(size int64) int64 {
	var hits int64
	lim := size
	if lim > int64(len(s.hist)) {
		lim = int64(len(s.hist))
	}
	for d := int64(0); d < lim; d++ {
		hits += s.hist[d]
	}
	return s.n - hits
}

// Curve returns the exact miss curve over the given size grid (strictly
// increasing, positive sizes), prepending the all-miss point at size 0.
// kiloUnits divides raw miss counts into curve units: pass n/1000 for
// misses per kilo-access, or instructions/1000 for MPKI.
func (s *StackSim) Curve(sizes []int64, kiloUnits float64) (*curve.Curve, error) {
	if s.n == 0 {
		return nil, fmt.Errorf("oracle: no accesses")
	}
	if kiloUnits <= 0 {
		return nil, fmt.Errorf("oracle: kiloUnits %g must be positive", kiloUnits)
	}
	// One cumulative pass makes each grid point O(1).
	cum := make([]int64, len(s.hist)+1)
	for d, h := range s.hist {
		cum[d+1] = cum[d] + h
	}
	hitsBelow := func(size int64) int64 {
		if size > int64(len(s.hist)) {
			size = int64(len(s.hist))
		}
		if size < 0 {
			size = 0
		}
		return cum[size]
	}
	pts := make([]curve.Point, 0, len(sizes)+1)
	pts = append(pts, curve.Point{Size: 0, MPKI: float64(s.n) / kiloUnits})
	for _, size := range sizes {
		if size <= 0 {
			continue
		}
		pts = append(pts, curve.Point{
			Size: float64(size),
			MPKI: float64(s.n-hitsBelow(size)) / kiloUnits,
		})
	}
	return curve.New(pts)
}

// SteadyCurve is Curve computed over reuses only: cold (first-touch)
// misses are excluded, which makes the result directly comparable to
// steady-state closed forms (Analytic) that model an infinite stream
// with no compulsory misses.
func (s *StackSim) SteadyCurve(sizes []int64, kiloUnits float64) (*curve.Curve, error) {
	c, err := s.Curve(sizes, kiloUnits)
	if err != nil {
		return nil, err
	}
	cold := float64(s.cold) / kiloUnits
	pts := c.Points()
	for i := range pts {
		pts[i].MPKI -= cold
		if pts[i].MPKI < 0 {
			pts[i].MPKI = 0
		}
	}
	return curve.New(pts)
}

// FromPattern runs n accesses of p (cloned, so the caller's pattern
// state is untouched) through a fresh simulator with a deterministic
// RNG.
func FromPattern(p workload.Pattern, n int64, seed uint64) *StackSim {
	s := NewStackSim()
	rng := hash.NewSplitMix64(seed)
	q := p.Clone()
	for i := int64(0); i < n; i++ {
		s.Access(q.Next(rng))
	}
	return s
}
