// Package oracle is the repo's independent ground truth for LRU miss
// curves: an exact Mattson stack-distance simulator plus closed-form
// analytic curves for the regular access patterns, cross-checked
// against each other and used to validate the entire measured
// monitor → hull → Talus stack from the outside.
//
// Everything else in the repo that produces a miss curve is sampled:
// the UMON bank samples the stream (Theorem 4) and quantizes sizes to
// way granularity, and round-trip tests before this package existed
// compared the monitor only to simulated caches built from the same
// assumptions. The oracle is different in kind — StackSim computes the
// reuse (stack) distance of every access exactly, so by Mattson's
// inclusion property a single pass yields the true LRU miss count at
// every cache size simultaneously. No sampling, no set hashing, no way
// quantization. For the regular patterns (cyclic scans, strided
// streams, pointer-chase rings, uniform and zipf IRM) Analytic supplies
// a second, closed-form derivation of the same curve, so the simulator
// and the formulas check each other before either checks the monitor.
//
// The package underwrites four test tiers (see oracle tests and
// DESIGN.md "Validation oracle"):
//
//   - monitor accuracy: CompareMonitor feeds one stream to a live
//     LRUMonitor and a StackSim and bounds curve.Distance between the
//     two curves for every generator in Scenarios;
//   - hull soundness: lower hulls of oracle curves are verified to be
//     true lower convex envelopes;
//   - Talus recombination: Theorem 6 configurations computed on oracle
//     curves must satisfy Eq. 5, ρ·m(α) + (1−ρ)·m(β) = hull(s), and
//     empirical Talus runs driven by oracle curves must land near the
//     hull;
//   - drift pinning: golden files freeze oracle curves per generator so
//     a behavioural change in any generator is a reviewable diff.
//
// Curves are produced in misses per kilo-access (pass kiloUnits =
// accesses/1000 to Curve), the unit the monitor tests already use;
// callers wanting per-kilo-instruction divide by APKI/1000 themselves.
package oracle
