// Closed-form steady-state LRU miss-ratio functions for the regular
// access patterns, derived independently of the stack simulator so the
// two can check each other:
//
//   - ring patterns (Scan, Strided, PointerChase): every reuse is at
//     distance footprint−1, so the miss ratio steps from 1 to 0 exactly
//     at the footprint;
//   - uniform IRM (Rand): a cache of s lines holds s of W equally
//     popular lines, so the steady-state miss ratio is 1 − s/W;
//   - zipf IRM (Zipf): Che's characteristic-time approximation over the
//     sampler's own effective rank pmf (Zipf.RankPMF), the standard
//     harmonic-sum treatment of LRU under independent zipf draws.

package oracle

import (
	"math"

	"talus/internal/curve"
	"talus/internal/workload"
)

// Analytic returns the closed-form steady-state LRU miss-ratio function
// for p (ratio of misses to accesses as a function of cache size in
// lines), with ok = false when no closed form is known (Mix, Phased,
// Diurnal, CliffSeeker — the stack simulator is the only oracle there).
func Analytic(p workload.Pattern) (ratio func(size float64) float64, ok bool) {
	switch v := p.(type) {
	case *workload.Scan:
		return stepRatio(v.Footprint()), true
	case *workload.Strided:
		return stepRatio(v.Footprint()), true
	case *workload.PointerChase:
		return stepRatio(v.Footprint()), true
	case *workload.Rand:
		w := float64(v.Lines)
		return func(size float64) float64 {
			if size >= w {
				return 0
			}
			if size <= 0 {
				return 1
			}
			return 1 - size/w
		}, true
	case *workload.Zipf:
		return cheRatio(v), true
	}
	return nil, false
}

// stepRatio is the ring-pattern closed form: with a cyclic reference
// stream of footprint F, every reuse distance is exactly F−1, so a
// cache of F lines hits every reuse and any smaller cache hits none.
func stepRatio(footprint int64) func(float64) float64 {
	f := float64(footprint)
	return func(size float64) float64 {
		if size >= f {
			return 0
		}
		return 1
	}
}

// cheRatio is Che's approximation for LRU under IRM: a cache of size C
// behaves as if each object stays resident for a characteristic time T
// solving Σ_i (1 − e^{−p_i·T}) = C, giving hit ratio
// Σ_i p_i·(1 − e^{−p_i·T}). Sums run over the sampler's effective rank
// buckets (uniform within a bucket), so the formula models the stream
// Next actually emits, bucketing approximation included.
func cheRatio(z *workload.Zipf) func(float64) float64 {
	ends, probs := z.RankPMF()
	// Per-bucket (count, per-item probability).
	counts := make([]float64, len(ends))
	perItem := make([]float64, len(ends))
	prev := int64(0)
	for i, e := range ends {
		counts[i] = float64(e - prev)
		perItem[i] = probs[i] / counts[i]
		prev = e
	}
	total := float64(z.Lines)

	occupancy := func(t float64) float64 {
		var occ float64
		for i := range counts {
			occ += counts[i] * -math.Expm1(-perItem[i]*t)
		}
		return occ
	}
	return func(size float64) float64 {
		if size <= 0 {
			return 1
		}
		if size >= total {
			return 0
		}
		// Solve occupancy(T) = size by bisection; occupancy is strictly
		// increasing in T from 0 toward total.
		lo, hi := 0.0, 1.0
		for occupancy(hi) < size {
			hi *= 2
			if hi > 1e18 {
				break
			}
		}
		for i := 0; i < 100; i++ {
			mid := (lo + hi) / 2
			if occupancy(mid) < size {
				lo = mid
			} else {
				hi = mid
			}
		}
		t := (lo + hi) / 2
		var hit float64
		for i := range counts {
			hit += counts[i] * perItem[i] * -math.Expm1(-perItem[i]*t)
		}
		return 1 - hit
	}
}

// CurveOf samples a miss-ratio function onto the given size grid
// (strictly increasing, positive) as a miss curve in misses per
// kilo-access (MPKA = 1000·ratio), prepending the all-miss point at
// size 0 — the same shape and units StackSim.Curve produces with
// kiloUnits = n/1000.
func CurveOf(ratio func(float64) float64, sizes []int64) (*curve.Curve, error) {
	pts := make([]curve.Point, 0, len(sizes)+1)
	pts = append(pts, curve.Point{Size: 0, MPKI: 1000 * ratio(0)})
	for _, s := range sizes {
		if s <= 0 {
			continue
		}
		pts = append(pts, curve.Point{Size: float64(s), MPKI: 1000 * ratio(float64(s))})
	}
	return curve.New(pts)
}
