// Sharded concurrent cache: stripes a partitioned cache across N
// independently locked shards so many goroutines can access it at once.
//
// Sharding splits the line-address space pseudo-randomly with an H3 hash
// (the same family the Talus sampler uses), so each shard of capacity C/N
// serves a statistically self-similar 1/N slice of the access stream.
// By the paper's Theorem 4 that slice behaves like the full stream on a
// cache of size (C/N)/(1/N) = C, which is what makes hash-sharding a
// faithful way to scale the simulated LLC across cores: aggregate hit
// ratios track the unsharded cache, and per-shard order is all that
// matters for correctness, because distinct shards never share lines.
//
// The shard backing is anything implementing Shard (SetAssoc, Ideal, or
// any core.PartitionedCache — the interfaces are structurally identical).
// Each shard is guarded by its own mutex; AccessBatch groups a batch of
// addresses by shard and takes each shard's lock once per batch, which
// amortizes lock acquisition on the hot path.

package cache

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"talus/internal/hash"
)

// Shard is the per-shard cache contract: structurally identical to
// core.PartitionedCache, restated here so the cache package does not
// depend on core. Implementations need not be goroutine-safe; the
// ShardedCache serializes all calls into a shard behind its lock.
type Shard interface {
	Access(addr uint64, part int) bool
	SetPartitionSizes(sizes []int64) error
	NumPartitions() int
	Capacity() int64
	PartitionableCapacity() int64
	Granule() int64
}

// ShardedCache stripes a partitioned cache across N shards keyed by an H3
// hash of the line address, with per-shard locking. It implements
// core.PartitionedCache (so a core.ShadowedCache can sit on top of it, and
// the Talus runtime becomes goroutine-safe end to end) plus the batch
// interface core.BatchAccessor. All methods are safe for concurrent use.
type ShardedCache struct {
	router  *hash.H3
	shards  []shardSlot
	scratch sync.Pool // *batchScratch
}

// shardSlot pairs one shard with its lock and router-level counters. The
// pad keeps hot per-shard state on distinct cache lines so shards do not
// false-share under concurrent traffic. probe is non-nil once
// EnableSharedHits succeeded on the backing: Access then tries the
// lock-free hit path first, and this slot's counters move atomically on
// every path (the probe updates them outside the lock).
type shardSlot struct {
	mu    sync.Mutex
	c     Shard
	probe SharedProber
	stats Stats
	_     [64]byte
}

// SharedProber is implemented by shard backings (SetAssoc) that can
// resolve cache hits without the shard lock. AccessShared reports
// (hit, ok): ok=false means the probe could not decide (not in shared
// mode, mutation in flight, or the line is not resident) and the caller
// must fall back to locked Access, which re-runs the access from
// scratch. EnableSharedHits switches the backing into shared mode and
// reports whether it could (policy and scheme permitting); it is one-way
// and must happen before concurrent traffic.
type SharedProber interface {
	EnableSharedHits() bool
	AccessShared(addr uint64, part int) (hit, ok bool)
}

// bump moves a slot's router counters for n accesses with the given hit
// count — atomically once the slot has a lock-free probe, since probes
// update the same counters without the lock.
func (sh *shardSlot) bump(n, hits int64) {
	if sh.probe != nil {
		atomic.AddInt64(&sh.stats.Accesses, n)
		atomic.AddInt64(&sh.stats.Hits, hits)
		atomic.AddInt64(&sh.stats.Misses, n-hits)
		return
	}
	sh.stats.Accesses += n
	sh.stats.Hits += hits
	sh.stats.Misses += n - hits
}

// load snapshots a slot's router counters; the caller holds sh.mu. In
// shared mode concurrent probes may still be adding, so the fields are
// loaded atomically (each field exact, the triple approximate — same
// contract any concurrent counter read has).
func (sh *shardSlot) load() Stats {
	if sh.probe == nil {
		return sh.stats
	}
	return Stats{
		Accesses: atomic.LoadInt64(&sh.stats.Accesses),
		Hits:     atomic.LoadInt64(&sh.stats.Hits),
		Misses:   atomic.LoadInt64(&sh.stats.Misses),
	}
}

// EnableSharedHits switches every shard whose backing supports it into
// shared-hits mode and reports whether ALL shards did — the usual case,
// since shards are built homogeneously. Shards that enabled keep their
// probe either way (a partially shared cache is merely slower, never
// wrong). One-way; call before concurrent traffic starts.
func (s *ShardedCache) EnableSharedHits() bool {
	all := true
	for i := range s.shards {
		sh := &s.shards[i]
		p, ok := sh.c.(SharedProber)
		if !ok || !p.EnableSharedHits() {
			all = false
			continue
		}
		sh.probe = p
	}
	return all
}

// batchScratch is the reusable per-call state of AccessBatch.
type batchScratch struct {
	shard []int32 // shard index of each access in the batch
	order []int32 // access indices grouped by shard, per-shard order kept
	off   []int32 // per-shard start offsets into order (len nShards+1)
	fill  []int32 // per-shard write cursors for the grouping pass
}

// Errors returned by NewSharded.
var (
	ErrBadShards     = errors.New("cache: shard count must be positive")
	ErrShardMismatch = errors.New("cache: shards disagree on partition count")
)

// ShardCapacity returns the capacity of shard i when totalLines is spread
// over nShards: an even split with the remainder going to the first
// shards. NewSharded's build callback receives exactly these values;
// SetPartitionSizes splits partition targets against the shards'
// resulting partitionable capacities (see splitTargets), so targets fit
// shard budgets whenever they fit in total.
func ShardCapacity(totalLines int64, nShards, i int) int64 {
	base := totalLines / int64(nShards)
	if int64(i) < totalLines%int64(nShards) {
		base++
	}
	return base
}

// NewSharded builds a sharded cache of approximately totalLines lines:
// build is called once per shard with the shard index and that shard's
// capacity (ShardCapacity's split) and returns the backing cache. The
// router hash is drawn deterministically from seed. All shards must
// expose the same number of partitions.
func NewSharded(nShards int, totalLines int64, seed uint64, build func(shard int, capacityLines int64) (Shard, error)) (*ShardedCache, error) {
	if nShards <= 0 {
		return nil, ErrBadShards
	}
	if totalLines <= 0 {
		return nil, ErrBadGeometry
	}
	s := &ShardedCache{
		router: hash.NewH3(seed^0x54A6DED, 64),
		shards: make([]shardSlot, nShards),
	}
	s.scratch.New = func() any {
		return &batchScratch{off: make([]int32, nShards+1), fill: make([]int32, nShards)}
	}
	for i := range s.shards {
		c, err := build(i, ShardCapacity(totalLines, nShards, i))
		if err != nil {
			return nil, fmt.Errorf("cache: building shard %d: %w", i, err)
		}
		if i > 0 && c.NumPartitions() != s.shards[0].c.NumPartitions() {
			return nil, ErrShardMismatch
		}
		s.shards[i].c = c
	}
	return s, nil
}

// shardOf maps a line address to its shard by multiply-shift reduction of
// the router hash (uniform and deterministic for a given seed).
func (s *ShardedCache) shardOf(addr uint64) int {
	if len(s.shards) == 1 {
		return 0
	}
	return hash.Reduce(s.router.Hash(addr), len(s.shards))
}

// NumShards returns the number of shards.
func (s *ShardedCache) NumShards() int { return len(s.shards) }

// Shard returns shard i's backing cache for post-run inspection. Callers
// must not touch it while other goroutines are accessing the cache.
func (s *ShardedCache) Shard(i int) Shard { return s.shards[i].c }

// Access performs one access for the given partition on the owning shard
// and reports whether it hit. Safe for concurrent use.
func (s *ShardedCache) Access(addr uint64, part int) bool {
	sh := &s.shards[s.shardOf(addr)]
	if sh.probe != nil {
		if hit, ok := sh.probe.AccessShared(addr, part); ok {
			// The probe fully accounted the access in the backing;
			// mirror it in the router counters and skip the lock.
			var h int64
			if hit {
				h = 1
			}
			atomic.AddInt64(&sh.stats.Accesses, 1)
			atomic.AddInt64(&sh.stats.Hits, h)
			atomic.AddInt64(&sh.stats.Misses, 1-h)
			return hit
		}
	}
	sh.mu.Lock()
	hit := sh.c.Access(addr, part)
	var h int64
	if hit {
		h = 1
	}
	sh.bump(1, h)
	sh.mu.Unlock()
	return hit
}

// AccessBatch performs len(addrs) accesses, taking each shard's lock once
// for the whole batch, and returns the number of hits. parts gives the
// partition of each access (nil means partition 0 throughout); hits, when
// non-nil, receives each access's outcome at the matching index. Within a
// shard the original access order is preserved, and distinct shards hold
// disjoint lines, so a batch returns exactly the outcomes of the
// equivalent Access loop. Safe for concurrent use.
func (s *ShardedCache) AccessBatch(addrs []uint64, parts []int, hits []bool) int {
	n := len(addrs)
	if n == 0 {
		return 0
	}
	if parts != nil && len(parts) != n {
		panic("cache: AccessBatch parts length mismatch")
	}
	if hits != nil && len(hits) != n {
		panic("cache: AccessBatch hits length mismatch")
	}
	if n == 1 {
		// Degenerate batch: skip the grouping passes and scratch state.
		p := 0
		if parts != nil {
			p = parts[0]
		}
		hit := s.Access(addrs[0], p)
		if hits != nil {
			hits[0] = hit
		}
		if hit {
			return 1
		}
		return 0
	}
	nHits := 0
	if len(s.shards) == 1 {
		sh := &s.shards[0]
		sh.mu.Lock()
		for i, a := range addrs {
			p := 0
			if parts != nil {
				p = parts[i]
			}
			hit := sh.c.Access(a, p)
			if hits != nil {
				hits[i] = hit
			}
			if hit {
				nHits++
			}
		}
		sh.bump(int64(n), int64(nHits))
		sh.mu.Unlock()
		return nHits
	}

	sc := s.scratch.Get().(*batchScratch)
	if cap(sc.shard) < n {
		sc.shard = make([]int32, n)
		sc.order = make([]int32, n)
	}
	shard, order := sc.shard[:n], sc.order[:n]
	off := sc.off
	for i := range off {
		off[i] = 0
	}
	// Pass 1: route every address and count per-shard batch sizes.
	for i, a := range addrs {
		sh := int32(s.shardOf(a))
		shard[i] = sh
		off[sh+1]++
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	// Pass 2: group access indices by shard, preserving order.
	fill := sc.fill
	copy(fill, off[:len(s.shards)])
	for i := range addrs {
		order[fill[shard[i]]] = int32(i)
		fill[shard[i]]++
	}
	// Replay each shard's slice of the batch under one lock acquisition.
	for si := range s.shards {
		lo, hi := off[si], off[si+1]
		if lo == hi {
			continue
		}
		sh := &s.shards[si]
		shardHits := 0
		sh.mu.Lock()
		for _, idx := range order[lo:hi] {
			p := 0
			if parts != nil {
				p = parts[idx]
			}
			hit := sh.c.Access(addrs[idx], p)
			if hits != nil {
				hits[idx] = hit
			}
			if hit {
				shardHits++
			}
		}
		sh.bump(int64(hi-lo), int64(shardHits))
		sh.mu.Unlock()
		nHits += shardHits
	}
	s.scratch.Put(sc)
	return nHits
}

// splitTargets computes the per-shard target matrix for SetPartitionSizes:
// out[i][p] is shard i's slice of partition p's target. Each partition's
// base share is apportioned proportionally to the shards' budgets
// (⌊total·bᵢ/B⌋, exact via 128-bit intermediates — shard capacities can
// differ by more than a line once SetAssoc rounds each shard to a set
// boundary, so an even split would overdraw the small shards), and the
// under-allocation left by the floors (< one line per shard) is placed
// greedily on the shard with the most budget remaining. Feasible by
// construction: the floor of a proportional share never exceeds a
// shard's budget while totals fit the summed budgets, and at every
// greedy step the integer slacks sum to B minus lines placed > 0, so
// some shard has a spare line. Deterministic: ties break toward the
// lowest shard index. With an all-zero budget vector (degenerate shards)
// it falls back to an even split.
func splitTargets(sizes, budgets []int64) [][]int64 {
	n := len(budgets)
	out := make([][]int64, n)
	slack := make([]int64, n)
	var sumB int64
	for i := range out {
		out[i] = make([]int64, len(sizes))
		slack[i] = budgets[i]
		sumB += budgets[i]
	}
	for p, total := range sizes {
		var placed int64
		for i := 0; i < n; i++ {
			var t int64
			if sumB > 0 {
				hi, lo := bits.Mul64(uint64(total), uint64(budgets[i]))
				q, _ := bits.Div64(hi, lo, uint64(sumB))
				t = int64(q)
			} else {
				t = total / int64(n)
			}
			out[i][p] = t
			slack[i] -= t
			placed += t
		}
		for ; placed < total; placed++ {
			best := 0
			for i := 1; i < n; i++ {
				if slack[i] > slack[best] {
					best = i
				}
			}
			out[best][p]++
			slack[best]--
		}
	}
	return out
}

// SetPartitionSizes programs per-partition target sizes in lines,
// splitting each partition's target across shards with splitTargets
// against the shards' partitionable capacities. Safe for concurrent use,
// though reconfiguring while traffic is in flight means individual
// accesses see either the old or the new sizes.
func (s *ShardedCache) SetPartitionSizes(sizes []int64) error {
	for p, size := range sizes {
		if size < 0 {
			return fmt.Errorf("cache: partition %d size %d is negative", p, size)
		}
	}
	budgets := make([]int64, len(s.shards))
	for i := range s.shards {
		budgets[i] = s.shards[i].c.PartitionableCapacity()
	}
	targets := splitTargets(sizes, budgets)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := sh.c.SetPartitionSizes(targets[i])
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("cache: shard %d: %w", i, err)
		}
	}
	return nil
}

// NumPartitions returns the per-shard partition count (all shards agree).
func (s *ShardedCache) NumPartitions() int { return s.shards[0].c.NumPartitions() }

// Capacity returns the summed capacity of all shards.
func (s *ShardedCache) Capacity() int64 {
	var total int64
	for i := range s.shards {
		total += s.shards[i].c.Capacity()
	}
	return total
}

// PartitionableCapacity returns the summed partitionable capacity.
func (s *ShardedCache) PartitionableCapacity() int64 {
	var total int64
	for i := range s.shards {
		total += s.shards[i].c.PartitionableCapacity()
	}
	return total
}

// Granule returns the coarsest shard granule times the shard count — a
// conservative allocator step (one granule's worth of lines per shard).
// SetPartitionSizes's proportional split does not guarantee each shard's
// slice lands on that shard's granule; the shard's own scheme rounds
// internally (as Way and Set partitioning do).
func (s *ShardedCache) Granule() int64 {
	var g int64 = 1
	for i := range s.shards {
		if sg := s.shards[i].c.Granule(); sg > g {
			g = sg
		}
	}
	return g * int64(len(s.shards))
}

// Stats returns router-level access counts aggregated over all shards.
// Hits and Misses partition Accesses exactly (misses that bypassed
// allocation are counted as plain misses here; per-backing bypass counts
// remain available via Shard). Safe for concurrent use; under concurrent
// traffic the result is a consistent per-shard snapshot.
func (s *ShardedCache) Stats() Stats {
	var total Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st := sh.load()
		sh.mu.Unlock()
		total.Accesses += st.Accesses
		total.Hits += st.Hits
		total.Misses += st.Misses
	}
	return total
}

// SetEvictHook forwards fn to every shard that implements EvictNotifier,
// under each shard's lock, and reports whether all shards accepted it —
// partial coverage would silently leak values, so a false return means
// the hook is not installed usably (callers should treat it as
// unsupported). The hook fires on the accessing goroutine with the
// owning shard's lock held; it must not re-enter the cache. Implements
// EvictNotifier.
func (s *ShardedCache) SetEvictHook(fn func(part int, addr uint64)) bool {
	ok := true
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n, supported := sh.c.(EvictNotifier)
		if supported {
			supported = n.SetEvictHook(fn)
		}
		sh.mu.Unlock()
		if !supported {
			ok = false
		}
	}
	return ok
}

// Invalidate routes the invalidation to addr's owning shard under its
// lock and reports whether a resident line was dropped. Shards not
// implementing Invalidator report false. Safe for concurrent use.
// Implements Invalidator.
func (s *ShardedCache) Invalidate(addr uint64, part int) bool {
	sh := &s.shards[s.shardOf(addr)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	inv, ok := sh.c.(Invalidator)
	if !ok {
		return false
	}
	return inv.Invalidate(addr, part)
}

// ShardStats returns shard i's router-level counters.
func (s *ShardedCache) ShardStats(i int) Stats {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.load()
}

// ResetStats clears the router-level counters on every shard.
func (s *ShardedCache) ResetStats() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.probe != nil {
			atomic.StoreInt64(&sh.stats.Accesses, 0)
			atomic.StoreInt64(&sh.stats.Hits, 0)
			atomic.StoreInt64(&sh.stats.Misses, 0)
		} else {
			sh.stats = Stats{}
		}
		sh.mu.Unlock()
	}
}

// String describes the sharded configuration.
func (s *ShardedCache) String() string {
	return fmt.Sprintf("sharded[%d] (%d lines)", len(s.shards), s.Capacity())
}
