package cache

import (
	"errors"
	"fmt"
	"sync/atomic"

	"talus/internal/hash"
	"talus/internal/partition"
	"talus/internal/policy"
)

// Stats aggregates access outcomes per partition and in total.
type Stats struct {
	Accesses int64
	Hits     int64
	Misses   int64
	Bypasses int64 // misses that did not allocate (policy bypassed or no candidates)
}

// HitRate returns Hits/Accesses, or 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// EvictNotifier is the optional eviction-reporting extension of the
// cache contract: implementations call the installed hook once per line
// evicted by replacement (and once per resident line on Flush), passing
// the evicted line's owning partition and address. The hook runs on the
// accessing goroutine with whatever lock guards the cache held, so it
// must not re-enter the cache. SetAssoc, Ideal, and ShardedCache all
// implement it; the serving store uses it to release a value's bytes
// when its simulated line dies.
type EvictNotifier interface {
	SetEvictHook(fn func(part int, addr uint64)) bool
}

// Invalidator is the optional invalidation extension: Invalidate drops
// the line holding addr for partition part, if resident, and reports
// whether a line was dropped. An invalidation is not an access — no
// stats move, no policy state is touched, and the eviction hook does NOT
// fire (the caller decided the line should die and owns the
// consequences). The serving store uses it on Delete so a deleted key's
// line does not linger as phantom residency skewing hit ratios.
type Invalidator interface {
	Invalidate(addr uint64, part int) bool
}

// SetAssoc is a hash-indexed, set-associative, write-allocate cache array
// with a partitioning scheme restricting victim choice and a replacement
// policy ranking victims. It implements core.PartitionedCache.
type SetAssoc struct {
	sets  int
	assoc int
	tags  []uint64
	owner []int32 // per line: owning partition, -1 = invalid (int32: atomically loadable in shared mode)

	pol    policy.Policy
	scheme partition.Scheme
	idx    *hash.H3
	evict  func(part int, addr uint64) // eviction hook, nil when unset

	// shared-hits mode (EnableSharedHits): AccessShared may probe for
	// hits without any external lock. seq is a seqlock generation
	// counter — odd while a mutator is rewriting tags/owner — that lets
	// probes detect a racing eviction/invalidation/flush and fall back
	// to the locked path. In shared mode every tags/owner write and
	// every stats counter is atomic so probes and (externally locked)
	// mutators never data-race.
	shared bool
	seq    atomic.Uint64

	total   Stats
	perPart []Stats

	wayBuf  []int
	lineBuf []int
}

// Errors returned by the cache constructors.
var (
	ErrBadGeometry = errors.New("cache: capacity, associativity and partitions must be positive")
)

// NewSetAssoc builds a cache of approximately capacityLines lines
// organized as capacity/assoc sets of assoc ways (capacity is rounded
// down to a multiple of assoc; at least one set). The scheme is configured
// for the resulting geometry; the policy is built from factory.
func NewSetAssoc(capacityLines int64, assoc int, scheme partition.Scheme, factory policy.Factory, seed uint64) (*SetAssoc, error) {
	if capacityLines <= 0 || assoc <= 0 || scheme == nil || factory == nil {
		return nil, ErrBadGeometry
	}
	sets := int(capacityLines) / assoc
	if sets < 1 {
		sets = 1
	}
	if err := scheme.Configure(sets, assoc); err != nil {
		return nil, err
	}
	n := sets * assoc
	c := &SetAssoc{
		sets:    sets,
		assoc:   assoc,
		tags:    make([]uint64, n),
		owner:   make([]int32, n),
		pol:     factory(sets, assoc, seed),
		scheme:  scheme,
		idx:     hash.NewH3(seed^0xCAC4E, 64),
		perPart: make([]Stats, scheme.NumPartitions()),
		wayBuf:  make([]int, 0, assoc),
		lineBuf: make([]int, 0, assoc),
	}
	for i := range c.owner {
		c.owner[i] = -1
	}
	return c, nil
}

// bumpAccess / bumpHit / bumpMiss / bumpBypass move the stats counters,
// atomically in shared mode (lock-free probes update them concurrently
// with the locked path).
func (c *SetAssoc) bumpAccess(part int) {
	if c.shared {
		atomic.AddInt64(&c.total.Accesses, 1)
		atomic.AddInt64(&c.perPart[part].Accesses, 1)
		return
	}
	c.total.Accesses++
	c.perPart[part].Accesses++
}

func (c *SetAssoc) bumpHit(part int) {
	if c.shared {
		atomic.AddInt64(&c.total.Hits, 1)
		atomic.AddInt64(&c.perPart[part].Hits, 1)
		return
	}
	c.total.Hits++
	c.perPart[part].Hits++
}

func (c *SetAssoc) bumpMiss(part int) {
	if c.shared {
		atomic.AddInt64(&c.total.Misses, 1)
		atomic.AddInt64(&c.perPart[part].Misses, 1)
		return
	}
	c.total.Misses++
	c.perPart[part].Misses++
}

func (c *SetAssoc) bumpBypass(part int) {
	if c.shared {
		atomic.AddInt64(&c.total.Bypasses, 1)
		atomic.AddInt64(&c.perPart[part].Bypasses, 1)
		return
	}
	c.total.Bypasses++
	c.perPart[part].Bypasses++
}

// EnableSharedHits switches the array into shared-hits mode, in which
// AccessShared may resolve hits without the caller's lock. It reports
// whether the mode could be enabled: the policy must support concurrent
// hit bookkeeping (policy.ConcurrentHitter) and the scheme's set
// indexing must be stable (partition.Scheme.StableSetIndex). One-way;
// call before concurrent traffic starts.
func (c *SetAssoc) EnableSharedHits() bool {
	ch, ok := c.pol.(policy.ConcurrentHitter)
	if !ok || !c.scheme.StableSetIndex() {
		return false
	}
	ch.EnableSharedHits()
	c.shared = true
	return true
}

// AccessShared attempts to resolve one access lock-free and reports
// (hit, ok). ok=false means the probe could not decide — the array is
// not in shared mode, a mutation was in flight, or the line was not
// resident — and the caller must retry under its lock via Access, which
// then performs the authoritative miss path (fill, eviction hook, byte
// accounting) exactly as today. On ok=true the access has been fully
// accounted (stats and recency), byte-identically to the locked path.
//
// The window between the seqlock re-check and the recency bump is not
// closed: a racing eviction can make the bump land on a line that was
// just replaced. That is a bounded recency approximation (one stamp on
// one line), never a correctness issue — misses, fills, evictions, and
// bookkeeping all still happen under the lock.
func (c *SetAssoc) AccessShared(addr uint64, part int) (hit, ok bool) {
	if !c.shared {
		return false, false
	}
	s1 := c.seq.Load()
	if s1&1 != 0 {
		return false, false // mutation in flight
	}
	h := c.idx.Hash(addr)
	set := c.scheme.SetIndex(h, part)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		li := base + w
		if atomic.LoadUint64(&c.tags[li]) == addr && atomic.LoadInt32(&c.owner[li]) >= 0 {
			if c.seq.Load() != s1 {
				return false, false // raced a mutation: retry locked
			}
			c.bumpAccess(part)
			c.bumpHit(part)
			c.pol.Hit(li, policy.AccessContext{Addr: addr, Set: set, Thread: part})
			return true, true
		}
	}
	return false, false // not resident here: the locked path decides
}

// Access performs one access on behalf of partition part and reports
// whether it hit. On a miss the line is filled (unless the policy bypasses
// or the scheme offers no candidates).
func (c *SetAssoc) Access(addr uint64, part int) bool {
	h := c.idx.Hash(addr)
	set := c.scheme.SetIndex(h, part)
	base := set * c.assoc
	ctx := policy.AccessContext{Addr: addr, Set: set, Thread: part}

	c.bumpAccess(part)

	// Lookup: scan the set's ways. Tag first: a 64-bit tag mismatch
	// rejects a way with one compare, where owner-first pays two loads
	// on every non-matching way. The sub-slices let the compiler hoist
	// the bounds checks out of the scan.
	setTags := c.tags[base : base+c.assoc]
	setOwners := c.owner[base : base+c.assoc]
	for w, tag := range setTags {
		if tag == addr && setOwners[w] >= 0 {
			c.bumpHit(part)
			c.pol.Hit(base+w, ctx)
			return true
		}
	}

	c.bumpMiss(part)

	cands := c.scheme.Candidates(set, part, c.owner[base:base+c.assoc], c.wayBuf[:0])
	if len(cands) == 0 {
		c.bumpBypass(part)
		return false
	}
	// Prefer a free way among the candidates.
	for _, w := range cands {
		li := base + w
		if c.owner[li] < 0 {
			c.fill(li, addr, part, ctx)
			return false
		}
	}
	// Victimize per policy over the candidate lines.
	lines := c.lineBuf[:0]
	for _, w := range cands {
		lines = append(lines, base+w)
	}
	victim := c.pol.Victim(lines, ctx)
	if victim < 0 {
		c.bumpBypass(part)
		return false
	}
	c.scheme.OnEvict(int(c.owner[victim]))
	if c.evict != nil {
		c.evict(int(c.owner[victim]), c.tags[victim])
	}
	c.fill(victim, addr, part, ctx)
	return false
}

// SetEvictHook installs fn to be called once per line evicted by
// replacement (and per resident line on Flush) with the dying line's
// owning partition and address. Pass nil to clear. Implements
// EvictNotifier; always reports true.
func (c *SetAssoc) SetEvictHook(fn func(part int, addr uint64)) bool {
	c.evict = fn
	return true
}

// Invalidate drops the line holding addr for partition part, if
// resident, and reports whether one was dropped. No stats move and the
// eviction hook does not fire. The set is derived with part's own index
// mapping, so under set partitioning a line must be invalidated by its
// owning partition. Implements Invalidator.
func (c *SetAssoc) Invalidate(addr uint64, part int) bool {
	h := c.idx.Hash(addr)
	set := c.scheme.SetIndex(h, part)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		li := base + w
		if c.owner[li] >= 0 && c.tags[li] == addr {
			c.scheme.OnEvict(int(c.owner[li]))
			if c.shared {
				c.seq.Add(1)
				atomic.StoreInt32(&c.owner[li], -1)
				c.seq.Add(1)
			} else {
				c.owner[li] = -1
			}
			return true
		}
	}
	return false
}

func (c *SetAssoc) fill(li int, addr uint64, part int, ctx policy.AccessContext) {
	if c.shared {
		c.seq.Add(1)
		atomic.StoreUint64(&c.tags[li], addr)
		atomic.StoreInt32(&c.owner[li], int32(part))
		c.seq.Add(1)
	} else {
		c.tags[li] = addr
		c.owner[li] = int32(part)
	}
	c.scheme.OnFill(part)
	c.pol.Fill(li, ctx)
}

// SetPartitionSizes programs per-partition target sizes in lines.
func (c *SetAssoc) SetPartitionSizes(sizes []int64) error { return c.scheme.SetTargets(sizes) }

// NumPartitions implements core.PartitionedCache.
func (c *SetAssoc) NumPartitions() int { return c.scheme.NumPartitions() }

// Capacity implements core.PartitionedCache (actual lines after geometry
// rounding).
func (c *SetAssoc) Capacity() int64 { return int64(c.sets) * int64(c.assoc) }

// PartitionableCapacity implements core.PartitionedCache.
func (c *SetAssoc) PartitionableCapacity() int64 {
	return int64(float64(c.Capacity()) * c.scheme.PartitionableFraction())
}

// Granule implements core.PartitionedCache.
func (c *SetAssoc) Granule() int64 { return c.scheme.GranuleLines() }

// Sets and Assoc expose the geometry.
func (c *SetAssoc) Sets() int  { return c.sets }
func (c *SetAssoc) Assoc() int { return c.assoc }

// Scheme returns the partitioning scheme (for occupancy inspection).
func (c *SetAssoc) Scheme() partition.Scheme { return c.scheme }

// Policy returns the replacement policy.
func (c *SetAssoc) Policy() policy.Policy { return c.pol }

// Stats returns total access statistics; PartStats returns partition p's.
func (c *SetAssoc) Stats() Stats          { return c.loadStats(&c.total) }
func (c *SetAssoc) PartStats(p int) Stats { return c.loadStats(&c.perPart[p]) }

func (c *SetAssoc) loadStats(s *Stats) Stats {
	if !c.shared {
		return *s
	}
	return Stats{
		Accesses: atomic.LoadInt64(&s.Accesses),
		Hits:     atomic.LoadInt64(&s.Hits),
		Misses:   atomic.LoadInt64(&s.Misses),
		Bypasses: atomic.LoadInt64(&s.Bypasses),
	}
}

// ResetStats clears counters without disturbing cache contents, so
// measurement can begin after warmup.
func (c *SetAssoc) ResetStats() {
	if c.shared {
		for _, s := range append([]*Stats{&c.total}, statPtrs(c.perPart)...) {
			atomic.StoreInt64(&s.Accesses, 0)
			atomic.StoreInt64(&s.Hits, 0)
			atomic.StoreInt64(&s.Misses, 0)
			atomic.StoreInt64(&s.Bypasses, 0)
		}
		return
	}
	c.total = Stats{}
	for i := range c.perPart {
		c.perPart[i] = Stats{}
	}
}

func statPtrs(ss []Stats) []*Stats {
	out := make([]*Stats, len(ss))
	for i := range ss {
		out[i] = &ss[i]
	}
	return out
}

// Flush invalidates all lines and clears policy and occupancy state.
// The eviction hook, if set, fires for every line that was resident.
func (c *SetAssoc) Flush() {
	if c.shared {
		c.seq.Add(1)
	}
	for i := range c.owner {
		if c.owner[i] >= 0 && c.evict != nil {
			c.evict(int(c.owner[i]), c.tags[i])
		}
		if c.shared {
			atomic.StoreInt32(&c.owner[i], -1)
		} else {
			c.owner[i] = -1
		}
	}
	if c.shared {
		c.seq.Add(1)
	}
	c.pol.Reset()
	c.scheme.Reset()
	c.ResetStats()
}

// String describes the cache configuration.
func (c *SetAssoc) String() string {
	return fmt.Sprintf("%d-way %d-set %s/%s (%d lines)",
		c.assoc, c.sets, c.scheme.Name(), c.pol.Name(), c.Capacity())
}
