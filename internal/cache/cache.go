package cache

import (
	"errors"
	"fmt"

	"talus/internal/hash"
	"talus/internal/partition"
	"talus/internal/policy"
)

// Stats aggregates access outcomes per partition and in total.
type Stats struct {
	Accesses int64
	Hits     int64
	Misses   int64
	Bypasses int64 // misses that did not allocate (policy bypassed or no candidates)
}

// HitRate returns Hits/Accesses, or 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// EvictNotifier is the optional eviction-reporting extension of the
// cache contract: implementations call the installed hook once per line
// evicted by replacement (and once per resident line on Flush), passing
// the evicted line's owning partition and address. The hook runs on the
// accessing goroutine with whatever lock guards the cache held, so it
// must not re-enter the cache. SetAssoc, Ideal, and ShardedCache all
// implement it; the serving store uses it to release a value's bytes
// when its simulated line dies.
type EvictNotifier interface {
	SetEvictHook(fn func(part int, addr uint64)) bool
}

// Invalidator is the optional invalidation extension: Invalidate drops
// the line holding addr for partition part, if resident, and reports
// whether a line was dropped. An invalidation is not an access — no
// stats move, no policy state is touched, and the eviction hook does NOT
// fire (the caller decided the line should die and owns the
// consequences). The serving store uses it on Delete so a deleted key's
// line does not linger as phantom residency skewing hit ratios.
type Invalidator interface {
	Invalidate(addr uint64, part int) bool
}

// SetAssoc is a hash-indexed, set-associative, write-allocate cache array
// with a partitioning scheme restricting victim choice and a replacement
// policy ranking victims. It implements core.PartitionedCache.
type SetAssoc struct {
	sets  int
	assoc int
	tags  []uint64
	owner []int16 // per line: owning partition, -1 = invalid

	pol    policy.Policy
	scheme partition.Scheme
	idx    *hash.H3
	evict  func(part int, addr uint64) // eviction hook, nil when unset

	total   Stats
	perPart []Stats

	wayBuf  []int
	lineBuf []int
}

// Errors returned by the cache constructors.
var (
	ErrBadGeometry = errors.New("cache: capacity, associativity and partitions must be positive")
)

// NewSetAssoc builds a cache of approximately capacityLines lines
// organized as capacity/assoc sets of assoc ways (capacity is rounded
// down to a multiple of assoc; at least one set). The scheme is configured
// for the resulting geometry; the policy is built from factory.
func NewSetAssoc(capacityLines int64, assoc int, scheme partition.Scheme, factory policy.Factory, seed uint64) (*SetAssoc, error) {
	if capacityLines <= 0 || assoc <= 0 || scheme == nil || factory == nil {
		return nil, ErrBadGeometry
	}
	sets := int(capacityLines) / assoc
	if sets < 1 {
		sets = 1
	}
	if err := scheme.Configure(sets, assoc); err != nil {
		return nil, err
	}
	n := sets * assoc
	c := &SetAssoc{
		sets:    sets,
		assoc:   assoc,
		tags:    make([]uint64, n),
		owner:   make([]int16, n),
		pol:     factory(sets, assoc, seed),
		scheme:  scheme,
		idx:     hash.NewH3(seed^0xCAC4E, 64),
		perPart: make([]Stats, scheme.NumPartitions()),
		wayBuf:  make([]int, 0, assoc),
		lineBuf: make([]int, 0, assoc),
	}
	for i := range c.owner {
		c.owner[i] = -1
	}
	return c, nil
}

// Access performs one access on behalf of partition part and reports
// whether it hit. On a miss the line is filled (unless the policy bypasses
// or the scheme offers no candidates).
func (c *SetAssoc) Access(addr uint64, part int) bool {
	h := c.idx.Hash(addr)
	set := c.scheme.SetIndex(h, part)
	base := set * c.assoc
	ctx := policy.AccessContext{Addr: addr, Set: set, Thread: part}

	c.total.Accesses++
	c.perPart[part].Accesses++

	// Lookup: scan the set's ways.
	for w := 0; w < c.assoc; w++ {
		li := base + w
		if c.owner[li] >= 0 && c.tags[li] == addr {
			c.total.Hits++
			c.perPart[part].Hits++
			c.pol.Hit(li, ctx)
			return true
		}
	}

	c.total.Misses++
	c.perPart[part].Misses++

	cands := c.scheme.Candidates(set, part, c.owner[base:base+c.assoc], c.wayBuf[:0])
	if len(cands) == 0 {
		c.total.Bypasses++
		c.perPart[part].Bypasses++
		return false
	}
	// Prefer a free way among the candidates.
	for _, w := range cands {
		li := base + w
		if c.owner[li] < 0 {
			c.fill(li, addr, part, ctx)
			return false
		}
	}
	// Victimize per policy over the candidate lines.
	lines := c.lineBuf[:0]
	for _, w := range cands {
		lines = append(lines, base+w)
	}
	victim := c.pol.Victim(lines, ctx)
	if victim < 0 {
		c.total.Bypasses++
		c.perPart[part].Bypasses++
		return false
	}
	c.scheme.OnEvict(int(c.owner[victim]))
	if c.evict != nil {
		c.evict(int(c.owner[victim]), c.tags[victim])
	}
	c.fill(victim, addr, part, ctx)
	return false
}

// SetEvictHook installs fn to be called once per line evicted by
// replacement (and per resident line on Flush) with the dying line's
// owning partition and address. Pass nil to clear. Implements
// EvictNotifier; always reports true.
func (c *SetAssoc) SetEvictHook(fn func(part int, addr uint64)) bool {
	c.evict = fn
	return true
}

// Invalidate drops the line holding addr for partition part, if
// resident, and reports whether one was dropped. No stats move and the
// eviction hook does not fire. The set is derived with part's own index
// mapping, so under set partitioning a line must be invalidated by its
// owning partition. Implements Invalidator.
func (c *SetAssoc) Invalidate(addr uint64, part int) bool {
	h := c.idx.Hash(addr)
	set := c.scheme.SetIndex(h, part)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		li := base + w
		if c.owner[li] >= 0 && c.tags[li] == addr {
			c.scheme.OnEvict(int(c.owner[li]))
			c.owner[li] = -1
			return true
		}
	}
	return false
}

func (c *SetAssoc) fill(li int, addr uint64, part int, ctx policy.AccessContext) {
	c.tags[li] = addr
	c.owner[li] = int16(part)
	c.scheme.OnFill(part)
	c.pol.Fill(li, ctx)
}

// SetPartitionSizes programs per-partition target sizes in lines.
func (c *SetAssoc) SetPartitionSizes(sizes []int64) error { return c.scheme.SetTargets(sizes) }

// NumPartitions implements core.PartitionedCache.
func (c *SetAssoc) NumPartitions() int { return c.scheme.NumPartitions() }

// Capacity implements core.PartitionedCache (actual lines after geometry
// rounding).
func (c *SetAssoc) Capacity() int64 { return int64(c.sets) * int64(c.assoc) }

// PartitionableCapacity implements core.PartitionedCache.
func (c *SetAssoc) PartitionableCapacity() int64 {
	return int64(float64(c.Capacity()) * c.scheme.PartitionableFraction())
}

// Granule implements core.PartitionedCache.
func (c *SetAssoc) Granule() int64 { return c.scheme.GranuleLines() }

// Sets and Assoc expose the geometry.
func (c *SetAssoc) Sets() int  { return c.sets }
func (c *SetAssoc) Assoc() int { return c.assoc }

// Scheme returns the partitioning scheme (for occupancy inspection).
func (c *SetAssoc) Scheme() partition.Scheme { return c.scheme }

// Policy returns the replacement policy.
func (c *SetAssoc) Policy() policy.Policy { return c.pol }

// Stats returns total access statistics; PartStats returns partition p's.
func (c *SetAssoc) Stats() Stats          { return c.total }
func (c *SetAssoc) PartStats(p int) Stats { return c.perPart[p] }

// ResetStats clears counters without disturbing cache contents, so
// measurement can begin after warmup.
func (c *SetAssoc) ResetStats() {
	c.total = Stats{}
	for i := range c.perPart {
		c.perPart[i] = Stats{}
	}
}

// Flush invalidates all lines and clears policy and occupancy state.
// The eviction hook, if set, fires for every line that was resident.
func (c *SetAssoc) Flush() {
	for i := range c.owner {
		if c.owner[i] >= 0 && c.evict != nil {
			c.evict(int(c.owner[i]), c.tags[i])
		}
		c.owner[i] = -1
	}
	c.pol.Reset()
	c.scheme.Reset()
	c.ResetStats()
}

// String describes the cache configuration.
func (c *SetAssoc) String() string {
	return fmt.Sprintf("%d-way %d-set %s/%s (%d lines)",
		c.assoc, c.sets, c.scheme.Name(), c.pol.Name(), c.Capacity())
}
