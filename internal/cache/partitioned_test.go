package cache

import (
	"testing"

	"talus/internal/partition"
	"talus/internal/policy"
)

// TestWayRepartitioningMigratesCapacity resizes way partitions at runtime
// and checks that the displaced partition's lines are gradually reclaimed
// by the grower (hardware way repartitioning semantics: lookups stay
// global, victim ranges move).
func TestWayRepartitioningMigratesCapacity(t *testing.T) {
	scheme := partition.NewWay(2)
	c, err := NewSetAssoc(1024, 16, scheme, policy.LRUFactory, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Start even; fill both partitions with distinct working sets.
	if err := c.SetPartitionSizes([]int64{512, 512}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for i := 0; i < 512; i++ {
			c.Access(uint64(i), 0)
			c.Access(uint64(10000+i), 1)
		}
	}
	occ0 := scheme.Occupancy(0)
	if occ0 < 400 {
		t.Fatalf("partition 0 occupancy = %d before resize", occ0)
	}
	// Shrink partition 0 to 1/4: partition 1's fills must reclaim the
	// ways partition 0 used to own.
	if err := c.SetPartitionSizes([]int64{256, 768}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		for i := 0; i < 768; i++ {
			c.Access(uint64(10000+i), 1)
		}
	}
	if got := scheme.Occupancy(1); got < 700 {
		t.Fatalf("partition 1 occupancy = %d after growing to 768", got)
	}
	if got := scheme.Occupancy(0); got > 300 {
		t.Fatalf("partition 0 occupancy = %d after shrinking to 256", got)
	}
}

// TestVantageConvergesToTargets checks fine-grained size enforcement:
// two equal access streams with unequal targets must converge to the
// programmed occupancies.
func TestVantageConvergesToTargets(t *testing.T) {
	scheme := partition.NewVantage(2)
	c, err := NewSetAssoc(2048, 16, scheme, policy.LRUFactory, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetPartitionSizes([]int64{1436, 400}); err != nil {
		t.Fatal(err)
	}
	// Both partitions stream over working sets bigger than their shares.
	for i := 0; i < 200000; i++ {
		c.Access(uint64(i%3000), 0)
		c.Access(uint64(100000+i%3000), 1)
	}
	occ0, occ1 := scheme.Occupancy(0), scheme.Occupancy(1)
	if occ0 < 1200 || occ0 > 1700 {
		t.Errorf("partition 0 occupancy %d far from target 1436", occ0)
	}
	if occ1 < 300 || occ1 > 650 {
		t.Errorf("partition 1 occupancy %d far from target 400", occ1)
	}
}

// TestSetPartitionIsolation: with set partitioning, one partition's
// thrashing cannot evict the other's lines (full physical isolation).
func TestSetPartitionIsolation(t *testing.T) {
	scheme := partition.NewSet(2)
	c, err := NewSetAssoc(1024, 4, scheme, policy.LRUFactory, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetPartitionSizes([]int64{512, 512}); err != nil {
		t.Fatal(err)
	}
	// Partition 0: small working set, becomes resident.
	for r := 0; r < 10; r++ {
		for i := 0; i < 128; i++ {
			c.Access(uint64(i), 0)
		}
	}
	// Partition 1: thrash hard.
	for i := 0; i < 100000; i++ {
		c.Access(uint64(50000+i), 1)
	}
	// Partition 0 must still hit.
	c.ResetStats()
	for i := 0; i < 128; i++ {
		c.Access(uint64(i), 0)
	}
	if hr := c.PartStats(0).HitRate(); hr < 0.95 {
		t.Fatalf("partition 0 hit rate %g after partition 1 thrashed; set isolation broken", hr)
	}
}

// TestZeroTargetVantageBypasses: a zero-sized Vantage partition must
// never allocate (Talus's α = 0 bypass path) yet still look up.
func TestZeroTargetVantageBypasses(t *testing.T) {
	scheme := partition.NewVantage(2)
	c, err := NewSetAssoc(512, 8, scheme, policy.LRUFactory, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetPartitionSizes([]int64{0, 460}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		c.Access(uint64(i%100), 0)
	}
	if occ := scheme.Occupancy(0); occ != 0 {
		t.Fatalf("zero-target partition holds %d lines", occ)
	}
	st := c.PartStats(0)
	if st.Hits != 0 || st.Bypasses != st.Misses {
		t.Fatalf("zero-target partition stats: %+v", st)
	}
	// But it can still hit lines another partition cached (global
	// lookup): partition 1 caches an address, partition 0 touches it.
	c.Access(999999, 1)
	if !c.Access(999999, 0) {
		t.Fatal("cross-partition lookup must hit")
	}
}

// TestStatsAccounting cross-checks Stats arithmetic.
func TestStatsAccounting(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("idle hit rate should be 0")
	}
	s = Stats{Accesses: 10, Hits: 4, Misses: 6}
	if s.HitRate() != 0.4 {
		t.Fatalf("hit rate = %g", s.HitRate())
	}
}
