// Tests for shared-hits mode: the lock-free hit probe must change
// nothing observable — sequential streams produce byte-identical state
// and stats with the probe on or off, and concurrent probing is
// race-clean with exact access conservation.

package cache

import (
	"runtime"
	"sync"
	"testing"

	"talus/internal/hash"
	"talus/internal/partition"
	"talus/internal/policy"
)

// buildPair returns two identically-seeded SetAssoc caches over the
// given scheme; the second is switched into shared-hits mode when
// supported (reported by the bool).
func buildPair(t *testing.T, mkScheme func() partition.Scheme, factory policy.Factory) (*SetAssoc, *SetAssoc, bool) {
	t.Helper()
	locked, err := NewSetAssoc(4096, 16, mkScheme(), factory, 7)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewSetAssoc(4096, 16, mkScheme(), factory, 7)
	if err != nil {
		t.Fatal(err)
	}
	return locked, shared, shared.EnableSharedHits()
}

// driveShared replays addrs through c, preferring the probe and falling
// back to Access exactly as ShardedCache.Access does.
func driveShared(c *SetAssoc, addrs []uint64, parts []int) int {
	hits := 0
	for i, a := range addrs {
		hit, ok := c.AccessShared(a, parts[i])
		if !ok {
			hit = c.Access(a, parts[i])
		}
		if hit {
			hits++
		}
	}
	return hits
}

// TestSharedHitsMatchesLocked pins the probe's byte-identity: driving
// the same sequential stream through a locked cache via Access and a
// shared-mode cache via probe-then-fallback yields identical hit
// outcomes, stats, and partition occupancies, across every scheme that
// advertises a stable set index.
func TestSharedHitsMatchesLocked(t *testing.T) {
	schemes := map[string]func() partition.Scheme{
		"none":    func() partition.Scheme { return partition.NewNone(2) },
		"way":     func() partition.Scheme { return partition.NewWay(2) },
		"vantage": func() partition.Scheme { return partition.NewVantage(2) },
	}
	for name, mk := range schemes {
		t.Run(name, func(t *testing.T) {
			locked, shared, ok := buildPair(t, mk, policy.LRUFactory)
			if !ok {
				t.Fatalf("EnableSharedHits refused on stable scheme %s", name)
			}
			rng := hash.NewSplitMix64(0xFEED)
			const n = 200000
			addrs := make([]uint64, n)
			parts := make([]int, n)
			for i := range addrs {
				addrs[i] = rng.Next() % 30000 // ~½ the capacity: plenty of hits and evictions
				parts[i] = int(rng.Next() % 2)
			}
			lockedHits := 0
			for i, a := range addrs {
				if locked.Access(a, parts[i]) {
					lockedHits++
				}
			}
			sharedHits := driveShared(shared, addrs, parts)
			if lockedHits != sharedHits {
				t.Fatalf("hits: locked %d != shared %d", lockedHits, sharedHits)
			}
			if ls, ss := locked.Stats(), shared.Stats(); ls != ss {
				t.Fatalf("stats: locked %+v != shared %+v", ls, ss)
			}
			for p := 0; p < 2; p++ {
				if ls, ss := locked.PartStats(p), shared.PartStats(p); ls != ss {
					t.Fatalf("part %d stats: locked %+v != shared %+v", p, ls, ss)
				}
			}
			// Tag arrays must match line for line: the probe may not have
			// perturbed placement at all.
			for li := range locked.tags {
				if locked.owner[li] != shared.owner[li] ||
					(locked.owner[li] >= 0 && locked.tags[li] != shared.tags[li]) {
					t.Fatalf("line %d diverged: locked (%d,%x) shared (%d,%x)",
						li, locked.owner[li], locked.tags[li], shared.owner[li], shared.tags[li])
				}
			}
		})
	}
}

// TestSharedHitsRefusals checks the gate: unstable schemes (set
// partitioning's movable ranges) and non-concurrent policies must keep
// the probe off, and an un-enabled cache must never claim ok.
func TestSharedHitsRefusals(t *testing.T) {
	c, err := NewSetAssoc(1024, 8, partition.NewSet(2), policy.LRUFactory, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.EnableSharedHits() {
		t.Fatal("EnableSharedHits accepted set partitioning (unstable SetIndex)")
	}
	if _, ok := c.AccessShared(42, 0); ok {
		t.Fatal("AccessShared claimed ok without shared mode")
	}
}

// TestSharedHitsConcurrent hammers the probe under -race: goroutines
// drive overlapping hot streams through AccessShared with locked
// fallback (serialized by a mutex, as ShardedCache does per shard) while
// invalidations run. Access conservation must hold exactly.
func TestSharedHitsConcurrent(t *testing.T) {
	c, err := NewSetAssoc(4096, 16, partition.NewVantage(2), policy.LRUFactory, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !c.EnableSharedHits() {
		t.Fatal("EnableSharedHits refused")
	}
	var mu sync.Mutex // stands in for the shard lock
	const (
		workers = 8
		perG    = 40000
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := hash.NewSplitMix64(uint64(g)*0x9E37 + 1)
			for i := 0; i < perG; i++ {
				addr := rng.Next() % 2000 // hot: mostly probe hits
				p := int(rng.Next() % 2)
				if _, ok := c.AccessShared(addr, p); !ok {
					mu.Lock()
					c.Access(addr, p)
					mu.Unlock()
				}
				if i%997 == 0 {
					mu.Lock()
					c.Invalidate(rng.Next()%2000, p)
					mu.Unlock()
				}
			}
			runtime.Gosched()
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Accesses != workers*perG {
		t.Fatalf("accesses %d, want %d", st.Accesses, workers*perG)
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("hits %d + misses %d != accesses %d", st.Hits, st.Misses, st.Accesses)
	}
}
