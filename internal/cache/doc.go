// Package cache implements the last-level cache models the evaluation
// runs on: a hash-indexed set-associative array with pluggable replacement
// policy and partitioning scheme (the workhorse), and an idealized
// fully-associative per-partition LRU cache (the paper's "Talus+I"
// configuration in Fig. 8).
//
// The simulated LLC is non-inclusive (paper §VI-B chooses non-inclusive
// LLCs to avoid back-invalidation anomalies) and sees only the
// L2-filtered access stream, which the workload generators produce
// directly. Addresses are line addresses (byte address / 64).
package cache
