package cache

import (
	"testing"

	"talus/internal/partition"
	"talus/internal/policy"
)

// evictLog collects hook firings in order.
type evictLog struct {
	parts []int
	addrs []uint64
}

func (l *evictLog) hook(part int, addr uint64) {
	l.parts = append(l.parts, part)
	l.addrs = append(l.addrs, addr)
}

// TestSetAssocEvictHook pins the hook contract on the set-associative
// array: every replacement eviction fires exactly once with the dying
// line's owner and address, and residency is conserved — a line is
// either still resident or was reported evicted.
func TestSetAssocEvictHook(t *testing.T) {
	c := newLRUCache(t, 16, 4, partition.NewNone(1)) // 4 sets × 4 ways
	var log evictLog
	if !c.SetEvictHook(log.hook) {
		t.Fatal("SetAssoc must support the eviction hook")
	}

	seen := make(map[uint64]bool)
	const n = 512
	for a := uint64(0); a < n; a++ {
		c.Access(a, 0)
		seen[a] = true
	}
	for _, a := range log.addrs {
		if !seen[a] {
			t.Fatalf("hook reported never-inserted address %#x", a)
		}
	}
	// Conservation: inserted = evicted + still resident.
	resident := 0
	for a := uint64(0); a < n; a++ {
		if c.Invalidate(a, 0) {
			resident++
		}
	}
	if len(log.addrs)+resident != n {
		t.Fatalf("conservation: %d evicted + %d resident != %d inserted",
			len(log.addrs), resident, n)
	}
	if len(log.addrs) == 0 {
		t.Fatal("512 addresses through 16 lines never evicted")
	}
}

// TestSetAssocInvalidate: dropping a resident line makes the next
// access miss, moves no stats, and does not fire the eviction hook.
func TestSetAssocInvalidate(t *testing.T) {
	c := newLRUCache(t, 64, 4, partition.NewNone(1))
	var log evictLog
	c.SetEvictHook(log.hook)

	c.Access(7, 0)
	if !c.Access(7, 0) {
		t.Fatal("warm line must hit")
	}
	statsBefore := c.Stats()
	if !c.Invalidate(7, 0) {
		t.Fatal("resident line not invalidated")
	}
	if c.Invalidate(7, 0) {
		t.Fatal("double invalidate reported a line")
	}
	if c.Stats() != statsBefore {
		t.Fatalf("invalidate moved stats: %+v -> %+v", statsBefore, c.Stats())
	}
	if len(log.addrs) != 0 {
		t.Fatalf("invalidate fired the eviction hook: %+v", log.addrs)
	}
	if c.Access(7, 0) {
		t.Fatal("invalidated line must miss")
	}
}

// TestSetAssocFlushFiresHook: Flush reports every resident line.
func TestSetAssocFlushFiresHook(t *testing.T) {
	c := newLRUCache(t, 64, 4, partition.NewNone(1))
	var log evictLog
	c.SetEvictHook(log.hook)
	for a := uint64(0); a < 10; a++ {
		c.Access(a, 0)
	}
	c.Flush()
	if len(log.addrs) != 10 {
		t.Fatalf("flush reported %d lines, want 10", len(log.addrs))
	}
}

// TestIdealEvictHook: the idealized per-partition LRU fires the hook on
// capacity evictions (access overflow) and shrinking resizes, with the
// right partition, and supports invalidation.
func TestIdealEvictHook(t *testing.T) {
	c, err := NewIdeal(8, 2) // 4 lines per partition
	if err != nil {
		t.Fatal(err)
	}
	var log evictLog
	if !c.SetEvictHook(log.hook) {
		t.Fatal("Ideal must support the eviction hook")
	}
	for a := uint64(0); a < 6; a++ {
		c.Access(a, 1)
	}
	if len(log.addrs) != 2 {
		t.Fatalf("6 addresses through 4 lines evicted %d, want 2", len(log.addrs))
	}
	// LRU order: 0 then 1 die first.
	if log.addrs[0] != 0 || log.addrs[1] != 1 {
		t.Fatalf("eviction order = %v, want [0 1]", log.addrs)
	}
	for _, p := range log.parts {
		if p != 1 {
			t.Fatalf("eviction in partition %d, want 1", p)
		}
	}
	// A shrinking resize evicts through the same hook.
	if err := c.SetPartitionSizes([]int64{4, 2}); err != nil {
		t.Fatal(err)
	}
	if len(log.addrs) != 4 {
		t.Fatalf("resize to 2 lines evicted %d total, want 4", len(log.addrs))
	}
	// Invalidate: resident goes, stats stay, absent reports false.
	if !c.Invalidate(5, 1) {
		t.Fatal("resident line not invalidated")
	}
	if c.Invalidate(5, 1) {
		t.Fatal("double invalidate reported a line")
	}
	if c.Access(5, 1) {
		t.Fatal("invalidated line must hit no more")
	}
}

// TestShardedEvictHook: the sharded router forwards the hook to every
// shard and routes invalidations to the owning shard; outcomes match
// the per-shard arrays exactly.
func TestShardedEvictHook(t *testing.T) {
	sc, err := NewSharded(4, 64, 99, func(i int, capacity int64) (Shard, error) {
		return NewSetAssoc(capacity, 4, partition.NewNone(1), policy.LRUFactory, uint64(i))
	})
	if err != nil {
		t.Fatal(err)
	}
	var log evictLog
	if !sc.SetEvictHook(log.hook) {
		t.Fatal("sharded over SetAssoc must support the eviction hook")
	}
	const n = 1024
	for a := uint64(0); a < n; a++ {
		sc.Access(a, 0)
	}
	if len(log.addrs) == 0 {
		t.Fatal("1024 addresses through 64 lines never evicted")
	}
	resident := 0
	for a := uint64(0); a < n; a++ {
		if sc.Invalidate(a, 0) {
			resident++
		}
	}
	if len(log.addrs)+resident != n {
		t.Fatalf("conservation: %d evicted + %d resident != %d inserted",
			len(log.addrs), resident, n)
	}
}
