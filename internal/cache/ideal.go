// Idealized partitioned cache: per-partition fully-associative LRU with
// exact line-granularity sizing. This is the paper's "Talus+I"
// configuration (Fig. 8): it removes associativity and set-mapping
// effects entirely, so Assumption 2 holds exactly and Talus should trace
// the convex hull as closely as sampling noise allows.

package cache

import (
	"errors"
	"fmt"
)

// Ideal is a set of independent fully-associative LRU caches, one per
// partition, each enforcing its capacity exactly. It implements
// core.PartitionedCache.
type Ideal struct {
	parts    []*fullLRU
	capacity int64
	total    Stats
	perPart  []Stats
	evict    func(part int, addr uint64) // eviction hook, nil when unset
}

// ErrOverCommit reports partition sizes exceeding the cache's capacity.
var ErrOverCommit = errors.New("cache: partition sizes exceed capacity")

// NewIdeal builds an idealized cache of capacityLines lines shared by
// numPartitions partitions. Initially capacity is split evenly.
func NewIdeal(capacityLines int64, numPartitions int) (*Ideal, error) {
	if capacityLines <= 0 || numPartitions <= 0 {
		return nil, ErrBadGeometry
	}
	c := &Ideal{
		parts:    make([]*fullLRU, numPartitions),
		capacity: capacityLines,
		perPart:  make([]Stats, numPartitions),
	}
	for i := range c.parts {
		share := capacityLines / int64(numPartitions)
		if int64(i) < capacityLines%int64(numPartitions) {
			share++
		}
		c.parts[i] = newFullLRU(share)
	}
	return c, nil
}

// Access implements core.PartitionedCache.
func (c *Ideal) Access(addr uint64, part int) bool {
	c.total.Accesses++
	c.perPart[part].Accesses++
	hit := c.parts[part].access(addr)
	if hit {
		c.total.Hits++
		c.perPart[part].Hits++
	} else {
		c.total.Misses++
		c.perPart[part].Misses++
	}
	return hit
}

// SetPartitionSizes implements core.PartitionedCache. Sizes must not
// exceed total capacity; shrunk partitions evict LRU lines immediately.
func (c *Ideal) SetPartitionSizes(sizes []int64) error {
	if len(sizes) != len(c.parts) {
		return fmt.Errorf("cache: want %d sizes, got %d", len(c.parts), len(sizes))
	}
	var sum int64
	for _, s := range sizes {
		if s < 0 {
			return fmt.Errorf("cache: negative partition size %d", s)
		}
		sum += s
	}
	if sum > c.capacity {
		return fmt.Errorf("%w: %d > %d", ErrOverCommit, sum, c.capacity)
	}
	for i, s := range sizes {
		c.parts[i].resize(s)
	}
	return nil
}

// NumPartitions implements core.PartitionedCache.
func (c *Ideal) NumPartitions() int { return len(c.parts) }

// Capacity implements core.PartitionedCache.
func (c *Ideal) Capacity() int64 { return c.capacity }

// PartitionableCapacity implements core.PartitionedCache.
func (c *Ideal) PartitionableCapacity() int64 { return c.capacity }

// Granule implements core.PartitionedCache: exact line granularity.
func (c *Ideal) Granule() int64 { return 1 }

// Stats and PartStats report access statistics.
func (c *Ideal) Stats() Stats          { return c.total }
func (c *Ideal) PartStats(p int) Stats { return c.perPart[p] }

// ResetStats clears counters without disturbing contents.
func (c *Ideal) ResetStats() {
	c.total = Stats{}
	for i := range c.perPart {
		c.perPart[i] = Stats{}
	}
}

// PartitionOccupancy returns partition p's resident line count.
func (c *Ideal) PartitionOccupancy(p int) int64 { return int64(len(c.parts[p].nodes)) }

// SetEvictHook installs fn to be called once per line evicted by
// capacity pressure — on access overflow or a shrinking resize — with
// the line's partition and address. Pass nil to clear. Implements
// EvictNotifier; always reports true.
func (c *Ideal) SetEvictHook(fn func(part int, addr uint64)) bool {
	c.evict = fn
	for p, f := range c.parts {
		if fn == nil {
			f.evict = nil
			continue
		}
		p := p
		f.evict = func(addr uint64) { fn(p, addr) }
	}
	return true
}

// Invalidate drops partition part's line for addr, if resident, and
// reports whether one was dropped. No stats move and the eviction hook
// does not fire. Implements Invalidator.
func (c *Ideal) Invalidate(addr uint64, part int) bool {
	f := c.parts[part]
	n, ok := f.nodes[addr]
	if !ok {
		return false
	}
	f.unlink(n)
	delete(f.nodes, addr)
	return true
}

// fullLRU is a fully-associative LRU cache over line addresses, built on
// a hash map plus an intrusive doubly-linked list (MRU at head).
type fullLRU struct {
	cap   int64
	nodes map[uint64]*lruNode
	head  *lruNode          // MRU
	tail  *lruNode          // LRU
	evict func(addr uint64) // partition-bound eviction hook, nil when unset
}

type lruNode struct {
	addr       uint64
	prev, next *lruNode
}

func newFullLRU(capacity int64) *fullLRU {
	return &fullLRU{cap: capacity, nodes: make(map[uint64]*lruNode)}
}

func (f *fullLRU) access(addr uint64) bool {
	if n, ok := f.nodes[addr]; ok {
		f.moveToFront(n)
		return true
	}
	if f.cap <= 0 {
		return false // zero-size partition: pure bypass
	}
	n := &lruNode{addr: addr}
	f.nodes[addr] = n
	f.pushFront(n)
	for int64(len(f.nodes)) > f.cap {
		f.evictLRU()
	}
	return false
}

func (f *fullLRU) resize(capacity int64) {
	f.cap = capacity
	for int64(len(f.nodes)) > f.cap {
		f.evictLRU()
	}
}

func (f *fullLRU) pushFront(n *lruNode) {
	n.prev = nil
	n.next = f.head
	if f.head != nil {
		f.head.prev = n
	}
	f.head = n
	if f.tail == nil {
		f.tail = n
	}
}

func (f *fullLRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		f.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		f.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (f *fullLRU) moveToFront(n *lruNode) {
	if f.head == n {
		return
	}
	f.unlink(n)
	f.pushFront(n)
}

func (f *fullLRU) evictLRU() {
	if f.tail == nil {
		return
	}
	victim := f.tail
	f.unlink(victim)
	delete(f.nodes, victim.addr)
	if f.evict != nil {
		f.evict(victim.addr)
	}
}
