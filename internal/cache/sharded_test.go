package cache

import (
	"sync"
	"testing"

	"talus/internal/hash"
	"talus/internal/partition"
	"talus/internal/policy"
)

// buildSharded constructs an n-shard LRU cache of totalLines lines with
// nParts partitions per shard.
func buildSharded(t testing.TB, nShards int, totalLines int64, nParts int) *ShardedCache {
	t.Helper()
	sc, err := NewSharded(nShards, totalLines, 42, func(i int, capLines int64) (Shard, error) {
		return NewSetAssoc(capLines, 8, partition.NewNone(nParts), policy.LRUFactory, uint64(1000+i))
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestShardedGeometry(t *testing.T) {
	sc := buildSharded(t, 5, 16384, 1)
	if got := sc.NumShards(); got != 5 {
		t.Fatalf("NumShards = %d, want 5", got)
	}
	// Shard capacities must sum to the total (each shard rounds its own
	// geometry, but 16384/5-line shards at 8 ways round cleanly enough to
	// check the split sums).
	var sum int64
	for i := 0; i < sc.NumShards(); i++ {
		sum += sc.Shard(i).Capacity()
	}
	if sum != sc.Capacity() {
		t.Fatalf("shard capacities sum to %d, Capacity() = %d", sum, sc.Capacity())
	}
	var split int64
	for i := 0; i < 5; i++ {
		split += ShardCapacity(16384, 5, i)
	}
	if split != 16384 {
		t.Fatalf("ShardCapacity split sums to %d, want 16384", split)
	}
}

// TestSplitTargets checks SetPartitionSizes's split invariants: each
// partition's per-shard targets sum to its total, and whenever the
// summed targets fit the summed budgets, no shard's targets exceed its
// own budget (the greedy remainder placement never stacks several
// partitions' remainders onto one shard past its capacity).
func TestSplitTargets(t *testing.T) {
	budgetsOf := func(total int64, n int) []int64 {
		b := make([]int64, n)
		for i := range b {
			b[i] = ShardCapacity(total, n, i)
		}
		return b
	}
	for _, tc := range []struct {
		budgets []int64
		sizes   []int64
	}{
		{budgetsOf(10, 2), []int64{5, 5}},
		{budgetsOf(100, 8), []int64{50, 50}}, // remainder stacking regression
		{budgetsOf(40, 3), []int64{10, 10, 10, 10}},
		{budgetsOf(29488, 8), []int64{29488}},
		{budgetsOf(64, 5), []int64{0, 7, 13}},
		{[]int64{13, 13, 13, 13, 12, 12, 12, 12}, []int64{33, 33, 33}},
		// Uneven budgets (set-boundary rounding skews shards by >1 line):
		// an even base split would overdraw the smaller shard.
		{[]int64{936, 921}, []int64{1857}},
		{[]int64{936, 921}, []int64{929, 928}},
		{[]int64{100, 1}, []int64{101}},
		{[]int64{0, 0}, []int64{4}}, // degenerate budgets: even fallback
	} {
		out := splitTargets(tc.sizes, tc.budgets)
		var grand, budget int64
		for _, s := range tc.sizes {
			grand += s
		}
		for _, b := range tc.budgets {
			budget += b
		}
		for p, total := range tc.sizes {
			var sum int64
			for i := range tc.budgets {
				if out[i][p] < 0 {
					t.Fatalf("negative target %d for shard %d partition %d (%+v)", out[i][p], i, p, tc)
				}
				sum += out[i][p]
			}
			if sum != total {
				t.Fatalf("partition %d targets sum to %d, want %d (%+v)", p, sum, total, tc)
			}
		}
		if grand <= budget {
			for i, b := range tc.budgets {
				var load int64
				for p := range tc.sizes {
					load += out[i][p]
				}
				if load > b {
					t.Fatalf("shard %d targets sum to %d over budget %d (%+v)", i, load, b, tc)
				}
			}
		}
	}
}

// TestShardedFullCapacityTargets programs partition sizes summing to the
// entire partitionable capacity on a validating (Ideal) backing — the
// remainder-stacking case that a fixed split rejects.
func TestShardedFullCapacityTargets(t *testing.T) {
	sc, err := NewSharded(8, 100, 3, func(i int, capLines int64) (Shard, error) {
		return NewIdeal(capLines, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	total := sc.PartitionableCapacity()
	if err := sc.SetPartitionSizes([]int64{total / 2, total - total/2}); err != nil {
		t.Fatalf("full-capacity split rejected: %v", err)
	}

	// Shards with budgets differing by far more than one line (as after
	// set-boundary rounding): a proportional split must still fit.
	uneven := []int64{936, 921}
	sc, err = NewSharded(2, 1857, 3, func(i int, capLines int64) (Shard, error) {
		return NewIdeal(uneven[i], 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	total = sc.PartitionableCapacity()
	if total != 1857 {
		t.Fatalf("PartitionableCapacity = %d, want 1857", total)
	}
	if err := sc.SetPartitionSizes([]int64{total, 0}); err != nil {
		t.Fatalf("uneven full-capacity split rejected: %v", err)
	}
	if err := sc.SetPartitionSizes([]int64{total / 2, total - total/2}); err != nil {
		t.Fatalf("uneven two-partition split rejected: %v", err)
	}
	if err := sc.SetPartitionSizes([]int64{-1, total}); err == nil {
		t.Fatal("negative partition size must be rejected")
	}
}

// TestShardedBatchMatchesLoop checks AccessBatch's core contract: a batch
// returns exactly the outcomes of the equivalent Access loop, because
// per-shard order is preserved and shards hold disjoint lines.
func TestShardedBatchMatchesLoop(t *testing.T) {
	scBatch := buildSharded(t, 4, 8192, 1)
	scLoop := buildSharded(t, 4, 8192, 1)

	rng := hash.NewSplitMix64(7)
	const batches, batchLen = 64, 512
	addrs := make([]uint64, batchLen)
	hits := make([]bool, batchLen)
	for b := 0; b < batches; b++ {
		for i := range addrs {
			addrs[i] = rng.Uint64n(16384)
		}
		nHits := scBatch.AccessBatch(addrs, nil, hits)
		sum := 0
		for i, a := range addrs {
			want := scLoop.Access(a, 0)
			if hits[i] != want {
				t.Fatalf("batch %d access %d (addr %d): batch hit=%v, loop hit=%v",
					b, i, a, hits[i], want)
			}
			if hits[i] {
				sum++
			}
		}
		if nHits != sum {
			t.Fatalf("batch %d: AccessBatch returned %d hits, outcomes sum to %d", b, nHits, sum)
		}
	}
	if got, want := scBatch.Stats(), scLoop.Stats(); got != want {
		t.Fatalf("stats diverge: batch %+v, loop %+v", got, want)
	}
}

// TestShardedConcurrentConservation hammers one cache from many
// goroutines, mixing single accesses and batches, and checks that the
// aggregated counters conserve every access issued.
func TestShardedConcurrentConservation(t *testing.T) {
	sc := buildSharded(t, 8, 32768, 2)
	const (
		goroutines = 16
		batches    = 40
		batchLen   = 256
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := hash.NewSplitMix64(uint64(g) * 0x9E3779B97F4A7C15)
			addrs := make([]uint64, batchLen)
			parts := make([]int, batchLen)
			for b := 0; b < batches; b++ {
				for i := range addrs {
					addrs[i] = rng.Uint64n(65536)
					parts[i] = int(rng.Uint64n(2))
				}
				if b%2 == 0 {
					sc.AccessBatch(addrs, parts, nil)
				} else {
					for i, a := range addrs {
						sc.Access(a, parts[i])
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := sc.Stats()
	want := int64(goroutines * batches * batchLen)
	if st.Accesses != want {
		t.Fatalf("Accesses = %d, want %d", st.Accesses, want)
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("Hits (%d) + Misses (%d) != Accesses (%d)", st.Hits, st.Misses, st.Accesses)
	}
	var perShard Stats
	for i := 0; i < sc.NumShards(); i++ {
		s := sc.ShardStats(i)
		perShard.Accesses += s.Accesses
		perShard.Hits += s.Hits
		perShard.Misses += s.Misses
	}
	if perShard != st {
		t.Fatalf("per-shard sum %+v != aggregate %+v", perShard, st)
	}
}

// TestShardedConcurrentResize reconfigures partition sizes while traffic
// is in flight; under -race this proves SetPartitionSizes and Access are
// safely interleaved.
func TestShardedConcurrentResize(t *testing.T) {
	sc, err := NewSharded(4, 16384, 9, func(i int, capLines int64) (Shard, error) {
		return NewSetAssoc(capLines, 8, partition.NewVantage(2), policy.LRUFactory, uint64(i))
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := hash.NewSplitMix64(uint64(g) + 31)
			for {
				select {
				case <-stop:
					return
				default:
				}
				sc.Access(rng.Uint64n(32768), int(rng.Uint64n(2)))
			}
		}(g)
	}
	total := sc.PartitionableCapacity()
	for r := 0; r < 50; r++ {
		a := total * int64(r%8+1) / 9
		if err := sc.SetPartitionSizes([]int64{a, total - a}); err != nil {
			t.Errorf("SetPartitionSizes: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()

	if st := sc.Stats(); st.Hits+st.Misses != st.Accesses {
		t.Fatalf("conservation violated: %+v", st)
	}
}
