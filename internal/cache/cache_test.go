package cache

import (
	"testing"

	"talus/internal/partition"
	"talus/internal/policy"
)

func newLRUCache(t *testing.T, lines int64, assoc int, scheme partition.Scheme) *SetAssoc {
	t.Helper()
	c, err := NewSetAssoc(lines, assoc, scheme, policy.LRUFactory, 42)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBasicHitMiss(t *testing.T) {
	c := newLRUCache(t, 64, 4, partition.NewNone(1))
	if c.Access(100, 0) {
		t.Fatal("first access must miss")
	}
	if !c.Access(100, 0) {
		t.Fatal("second access must hit")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGeometryRounding(t *testing.T) {
	c := newLRUCache(t, 100, 8, partition.NewNone(1))
	if c.Capacity() != 96 { // 100/8 = 12 sets × 8 ways
		t.Fatalf("capacity = %d, want 96", c.Capacity())
	}
	if c.Sets() != 12 || c.Assoc() != 8 {
		t.Fatalf("geometry %d×%d", c.Sets(), c.Assoc())
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewSetAssoc(0, 4, partition.NewNone(1), policy.LRUFactory, 0); err == nil {
		t.Fatal("zero capacity should fail")
	}
	if _, err := NewSetAssoc(64, 0, partition.NewNone(1), policy.LRUFactory, 0); err == nil {
		t.Fatal("zero assoc should fail")
	}
	if _, err := NewSetAssoc(64, 4, nil, policy.LRUFactory, 0); err == nil {
		t.Fatal("nil scheme should fail")
	}
	if _, err := NewSetAssoc(64, 4, partition.NewNone(1), nil, 0); err == nil {
		t.Fatal("nil factory should fail")
	}
}

func TestWorkingSetFits(t *testing.T) {
	// 1024 lines, working set 512: after warmup everything hits.
	c := newLRUCache(t, 1024, 16, partition.NewNone(1))
	for round := 0; round < 3; round++ {
		for a := uint64(0); a < 512; a++ {
			c.Access(a, 0)
		}
	}
	c.ResetStats()
	for a := uint64(0); a < 512; a++ {
		if !c.Access(a, 0) {
			t.Fatalf("addr %d should hit once resident", a)
		}
	}
}

func TestLRUScanThrashes(t *testing.T) {
	// Cyclic scan of 2× capacity under LRU: ~0 hits (the cliff mechanism).
	c := newLRUCache(t, 1024, 16, partition.NewNone(1))
	const footprint = 2048
	for i := 0; i < footprint*4; i++ {
		c.Access(uint64(i%footprint), 0)
	}
	c.ResetStats()
	for i := 0; i < footprint*2; i++ {
		c.Access(uint64(i%footprint), 0)
	}
	if hr := c.Stats().HitRate(); hr > 0.02 {
		t.Fatalf("LRU hit rate on oversized scan = %g, want ~0", hr)
	}
}

func TestDIPResistsThrashing(t *testing.T) {
	// Same oversized scan: DIP's BIP constituent keeps part of the
	// working set resident, so it must clearly beat LRU's ~0%.
	c, err := NewSetAssoc(1024, 16, partition.NewNone(1), policy.DIPFactory, 42)
	if err != nil {
		t.Fatal(err)
	}
	const footprint = 2048
	for i := 0; i < footprint*6; i++ {
		c.Access(uint64(i%footprint), 0)
	}
	c.ResetStats()
	for i := 0; i < footprint*4; i++ {
		c.Access(uint64(i%footprint), 0)
	}
	if hr := c.Stats().HitRate(); hr < 0.15 {
		t.Fatalf("DIP hit rate on oversized scan = %g, want > 0.15", hr)
	}
}

func TestPDPResistsThrashing(t *testing.T) {
	c, err := NewSetAssoc(1024, 16, partition.NewNone(1), policy.PDPFactory, 42)
	if err != nil {
		t.Fatal(err)
	}
	const footprint = 2048
	// PDP needs enough accesses for its reuse-distance sampler to settle.
	for i := 0; i < 300000; i++ {
		c.Access(uint64(i%footprint), 0)
	}
	c.ResetStats()
	for i := 0; i < footprint*8; i++ {
		c.Access(uint64(i%footprint), 0)
	}
	if hr := c.Stats().HitRate(); hr < 0.15 {
		t.Fatalf("PDP hit rate on oversized scan = %g, want > 0.15", hr)
	}
}

func TestSRRIPHandlesMixedReuse(t *testing.T) {
	// Half the accesses hammer a small hot set, half scan a huge array.
	// SRRIP should protect the hot lines far better than LRU does.
	run := func(factory policy.Factory) float64 {
		c, err := NewSetAssoc(512, 16, partition.NewNone(1), factory, 7)
		if err != nil {
			t.Fatal(err)
		}
		hot := uint64(64)
		scan := uint64(0)
		hotHits, hotAcc := 0, 0
		for i := 0; i < 200000; i++ {
			var hit bool
			if i%2 == 0 {
				hit = c.Access(uint64(i/2)%hot+1<<30, 0)
				hotAcc++
				if hit && i > 100000 {
					hotHits++
				}
			} else {
				c.Access(scan, 0)
				scan++
			}
		}
		return float64(hotHits) / float64(hotAcc/2)
	}
	srrip := run(policy.SRRIPFactory)
	lru := run(policy.LRUFactory)
	if srrip < lru {
		t.Fatalf("SRRIP hot hit rate %g < LRU %g; scan resistance missing", srrip, lru)
	}
}

func TestPerPartitionStats(t *testing.T) {
	c := newLRUCache(t, 256, 4, partition.NewVantage(2))
	c.Access(1, 0)
	c.Access(1, 0)
	c.Access(2, 1)
	if c.PartStats(0).Accesses != 2 || c.PartStats(0).Hits != 1 {
		t.Fatalf("part 0 stats %+v", c.PartStats(0))
	}
	if c.PartStats(1).Accesses != 1 || c.PartStats(1).Misses != 1 {
		t.Fatalf("part 1 stats %+v", c.PartStats(1))
	}
}

func TestFlush(t *testing.T) {
	c := newLRUCache(t, 64, 4, partition.NewNone(1))
	c.Access(5, 0)
	c.Flush()
	if c.Access(5, 0) {
		t.Fatal("flushed line must miss")
	}
	if c.Stats().Accesses != 1 {
		t.Fatal("flush must reset stats")
	}
}

func TestString(t *testing.T) {
	c := newLRUCache(t, 64, 4, partition.NewNone(1))
	if c.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestIdealExactCapacity(t *testing.T) {
	c, err := NewIdeal(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill 128 distinct lines, then re-access: all hit (fully assoc).
	for a := uint64(0); a < 128; a++ {
		c.Access(a, 0)
	}
	c.ResetStats()
	for a := uint64(0); a < 128; a++ {
		if !c.Access(a, 0) {
			t.Fatalf("line %d should be resident", a)
		}
	}
	// One more line evicts exactly the LRU line (0).
	c.Access(999, 0)
	if c.Access(1, 0) != true {
		t.Fatal("line 1 should survive")
	}
	if c.Access(0, 0) {
		t.Fatal("line 0 (LRU) should have been evicted")
	}
}

func TestIdealPartitionIsolation(t *testing.T) {
	c, err := NewIdeal(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetPartitionSizes([]int64{10, 90}); err != nil {
		t.Fatal(err)
	}
	// Partition 0 only ever holds 10 lines, regardless of partition 1.
	for a := uint64(0); a < 20; a++ {
		c.Access(a, 0)
	}
	if got := c.PartitionOccupancy(0); got != 10 {
		t.Fatalf("partition 0 holds %d lines, want 10", got)
	}
	for a := uint64(1000); a < 1090; a++ {
		c.Access(a, 1)
	}
	if got := c.PartitionOccupancy(1); got != 90 {
		t.Fatalf("partition 1 holds %d lines, want 90", got)
	}
}

func TestIdealResizeEvicts(t *testing.T) {
	c, err := NewIdeal(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 100; a++ {
		c.Access(a, 0)
	}
	if err := c.SetPartitionSizes([]int64{10}); err != nil {
		t.Fatal(err)
	}
	if got := c.PartitionOccupancy(0); got != 10 {
		t.Fatalf("after shrink, occupancy = %d, want 10", got)
	}
	// The 10 most recent survive.
	if !c.Access(99, 0) || c.Access(0, 0) {
		t.Fatal("shrink must evict LRU lines first")
	}
}

func TestIdealOverCommitRejected(t *testing.T) {
	c, err := NewIdeal(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetPartitionSizes([]int64{80, 30}); err == nil {
		t.Fatal("overcommit must be rejected")
	}
	if err := c.SetPartitionSizes([]int64{80}); err == nil {
		t.Fatal("wrong count must be rejected")
	}
	if err := c.SetPartitionSizes([]int64{-1, 10}); err == nil {
		t.Fatal("negative size must be rejected")
	}
}

func TestIdealZeroSizePartitionBypasses(t *testing.T) {
	c, err := NewIdeal(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetPartitionSizes([]int64{0, 100}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if c.Access(42, 0) {
			t.Fatal("zero-size partition must never hit")
		}
	}
	if c.PartitionOccupancy(0) != 0 {
		t.Fatal("zero-size partition must stay empty")
	}
}
