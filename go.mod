module talus

go 1.24
